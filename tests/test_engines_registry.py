"""Tests for the engine registry."""

from __future__ import annotations

import pytest

from repro import (
    CLUSTERING_ENGINES,
    ENGINE_FACTORIES,
    PAPER_ENGINES,
    available_engines,
    create_engine,
    create_engines,
)
from repro.core.engine import ContinuousEngine
from repro.graph.errors import EngineError


class TestRegistry:
    def test_all_paper_engines_are_available(self):
        assert set(PAPER_ENGINES) <= set(available_engines())
        assert set(CLUSTERING_ENGINES) <= set(PAPER_ENGINES)

    def test_create_engine_returns_named_instances(self):
        for name in available_engines():
            engine = create_engine(name)
            assert isinstance(engine, ContinuousEngine)
            assert engine.name == name

    def test_create_engine_forwards_kwargs(self):
        engine = create_engine("TRIC", injective=True)
        assert engine.injective

    def test_unknown_engine_raises(self):
        with pytest.raises(EngineError):
            create_engine("Postgres")

    def test_create_engines_builds_a_mapping(self):
        engines = create_engines(("TRIC", "INV"))
        assert set(engines) == {"TRIC", "INV"}
        assert engines["TRIC"].name == "TRIC"

    def test_default_set_is_the_paper_set(self):
        engines = create_engines()
        assert set(engines) == set(PAPER_ENGINES)

    def test_registry_has_exactly_the_documented_engines(self):
        assert set(ENGINE_FACTORIES) == {
            "TRIC",
            "TRIC+",
            "INV",
            "INV+",
            "INC",
            "INC+",
            "GraphDB",
            "Naive",
        }
