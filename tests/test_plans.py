"""Tests for per-query evaluation plans (path bindings and answer assembly)."""

from __future__ import annotations

import pytest

from repro.matching.plans import PathPlan, QueryEvaluationPlan, bindings_to_dicts
from repro.matching.relation import Relation
from repro.query import QueryGraphPattern, covering_paths


@pytest.fixture
def chain_plan() -> QueryEvaluationPlan:
    pattern = QueryGraphPattern(
        "chain", [("hasMod", "?f", "?p"), ("posted", "?p", "pst1")]
    )
    return QueryEvaluationPlan(pattern)


@pytest.fixture
def cycle_plan() -> QueryEvaluationPlan:
    pattern = QueryGraphPattern(
        "cycle", [("knows", "?a", "?b"), ("knows", "?b", "?a")]
    )
    return QueryEvaluationPlan(pattern)


class TestPathPlan:
    def test_positional_schema_and_variables(self, chain_plan):
        path_plan = chain_plan.path_plans[0]
        assert path_plan.schema == ("p0", "p1", "p2")
        assert path_plan.variable_names == ("f", "p")
        assert path_plan.equality_positions == ()

    def test_repeated_variable_creates_equality_constraint(self, cycle_plan):
        path_plan = cycle_plan.path_plans[0]
        assert path_plan.equality_positions == ((0, 2),)

    def test_bindings_from_rows_drops_literal_columns(self, chain_plan):
        path_plan = chain_plan.path_plans[0]
        bindings = path_plan.bindings_from_rows({("f1", "p1", "pst1")})
        assert bindings.schema == ("f", "p")
        assert bindings.rows == {("f1", "p1")}

    def test_bindings_filter_equality_constraints(self, cycle_plan):
        path_plan = cycle_plan.path_plans[0]
        bindings = path_plan.bindings_from_rows({("a", "b", "a"), ("a", "b", "c")})
        assert bindings.rows == {("a", "b")}

    def test_positions_of_key(self, cycle_plan):
        path_plan = cycle_plan.path_plans[0]
        key = path_plan.key_sequence[0]
        assert path_plan.positions_of_key(key) == [0, 1]


class TestQueryEvaluationPlan:
    def test_uses_covering_paths_by_default(self, paper_fig4_queries):
        q1 = paper_fig4_queries[0]
        plan = QueryEvaluationPlan(q1)
        assert plan.num_paths == len(covering_paths(q1))

    def test_variable_names_cover_the_whole_query(self, paper_fig4_queries):
        q1 = paper_fig4_queries[0]
        plan = QueryEvaluationPlan(q1)
        assert set(plan.variable_names) == {v.name for v in q1.variables()}

    def test_key_occurrences_and_paths_containing(self, chain_plan):
        for key in chain_plan.distinct_keys():
            assert chain_plan.paths_containing(key) == [0]

    def test_evaluate_full_single_path(self, chain_plan):
        rows = {("f1", "p1", "pst1"), ("f2", "p1", "pst1")}
        bindings = chain_plan.evaluate_full([rows])
        assert bindings.rows == {("f1", "p1"), ("f2", "p1")}
        assert bindings_to_dicts(bindings) == [
            {"f": "f1", "p": "p1"},
            {"f": "f2", "p": "p1"},
        ]

    def test_evaluate_full_joins_multiple_paths(self, paper_fig4_queries):
        q1 = paper_fig4_queries[0]
        plan = QueryEvaluationPlan(q1)
        # Build per-path rows consistent with a single embedding.
        rows_per_path = []
        assignment = {"f1": "F", "p1": "P", "com1": "C"}
        for path_plan in plan.path_plans:
            row = []
            for term in path_plan.terms:
                if hasattr(term, "name"):
                    row.append(assignment[term.name])
                else:
                    row.append(term.value)
            rows_per_path.append({tuple(row)})
        bindings = plan.evaluate_full(rows_per_path)
        assert len(bindings) == 1
        only = bindings_to_dicts(bindings)[0]
        assert only == {"f1": "F", "p1": "P", "com1": "C"}

    def test_evaluate_full_empty_path_means_no_answers(self, paper_fig4_queries):
        q1 = paper_fig4_queries[0]
        plan = QueryEvaluationPlan(q1)
        rows_per_path = [set() for _ in plan.path_plans]
        assert len(plan.evaluate_full(rows_per_path)) == 0

    def test_evaluate_delta_returns_only_new_answers(self, chain_plan):
        full = {("f1", "p1", "pst1"), ("f2", "p2", "pst1")}
        delta = {("f2", "p2", "pst1")}
        bindings = chain_plan.evaluate_delta({0: delta}, [full])
        assert bindings.rows == {("f2", "p2")}

    def test_evaluate_delta_with_empty_delta_is_empty(self, chain_plan):
        assert len(chain_plan.evaluate_delta({0: set()}, [set()])) == 0

    def test_injective_filter(self):
        pattern = QueryGraphPattern("q", [("knows", "?a", "?b")])
        plan = QueryEvaluationPlan(pattern)
        rows = {("x", "x"), ("x", "y")}
        homomorphic = plan.evaluate_full([rows])
        injective = plan.evaluate_full([rows], injective=True)
        assert homomorphic.rows == {("x", "x"), ("x", "y")}
        assert injective.rows == {("x", "y")}

    def test_injective_filter_excludes_literal_collisions(self):
        pattern = QueryGraphPattern("q", [("posted", "?a", "pst1")])
        plan = QueryEvaluationPlan(pattern)
        rows = {("pst1", "pst1"), ("u1", "pst1")}
        injective = plan.evaluate_full([rows], injective=True)
        assert injective.rows == {("u1",)}

    def test_bindings_to_dicts_sorted_and_stable(self):
        # Canonical answer order: sorted on the variable-name-sorted items
        # of each binding — the same order the naive oracle reports, so
        # engine answer lists compare equal element for element.
        relation = Relation(("b", "a"), [("2", "1"), ("0", "9")])
        dicts = bindings_to_dicts(relation)
        assert dicts == [{"b": "2", "a": "1"}, {"b": "0", "a": "9"}]
