"""Tests for relations, natural joins, and path-row extension."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.relation import CountedRelation, Relation, extend_path_rows, natural_join


class TestRelationBasics:
    def test_empty_relation(self):
        relation = Relation(("a", "b"))
        assert len(relation) == 0
        assert not relation
        assert relation.arity == 2

    def test_add_and_contains(self):
        relation = Relation(("a", "b"))
        assert relation.add(("x", "y"))
        assert ("x", "y") in relation
        assert len(relation) == 1

    def test_add_duplicate_returns_false(self):
        relation = Relation(("a",), [("x",)])
        assert not relation.add(("x",))
        assert len(relation) == 1

    def test_add_wrong_arity_raises(self):
        relation = Relation(("a", "b"))
        with pytest.raises(ValueError):
            relation.add(("only-one",))

    def test_add_all_returns_new_rows_only(self):
        relation = Relation(("a",), [("x",)])
        added = relation.add_all([("x",), ("y",), ("z",), ("y",)])
        assert added == [("y",), ("z",)]

    def test_discard(self):
        relation = Relation(("a",), [("x",)])
        assert relation.discard(("x",))
        assert not relation.discard(("x",))

    def test_versions_track_mutations(self):
        relation = Relation(("a",))
        v0 = relation.version
        relation.add(("x",))
        assert relation.version > v0
        v1 = relation.version
        relation.discard(("x",))
        assert relation.version > v1

    def test_append_log(self):
        relation = Relation(("a",))
        relation.add(("x",))
        mark = relation.log_length
        relation.add(("y",))
        assert list(relation.appended_since(mark)) == [("y",)]

    def test_clear_and_replace(self):
        relation = Relation(("a",), [("x",), ("y",)])
        relation.replace_rows([("z",)])
        assert relation.rows == {("z",)}
        relation.clear()
        assert len(relation) == 0

    def test_copy_is_independent(self):
        relation = Relation(("a",), [("x",)])
        clone = relation.copy()
        clone.add(("y",))
        assert len(relation) == 1


class TestDeltaLog:
    def test_removals_are_logged_with_negative_sign(self):
        relation = Relation(("a",), [("x",)])
        mark = relation.log_length
        relation.add(("y",))
        relation.remove(("x",))
        assert list(relation.deltas_since(mark)) == [(("y",), 1), (("x",), -1)]
        assert relation.appended_since(mark) == [("y",)]

    def test_remove_all_reports_only_removed_rows(self):
        relation = Relation(("a",), [("x",), ("y",)])
        removed = relation.remove_all([("x",), ("z",), ("x",)])
        assert removed == [("x",)]
        assert relation.rows == {("y",)}

    def test_log_positions_stay_valid_across_removals(self):
        relation = Relation(("a",))
        relation.add(("x",))
        mark = relation.log_length
        relation.remove(("x",))
        relation.add(("z",))
        assert list(relation.deltas_since(mark)) == [(("x",), -1), (("z",), 1)]

    def test_churn_compacts_the_log_instead_of_growing_it(self):
        relation = Relation(("a",))
        epoch = relation.epoch
        # Add/remove cycles grow the log without growing the row set; the
        # relation must eventually snapshot-reset it (with an epoch bump)
        # rather than retaining one entry per mutation forever.
        for i in range(500):
            row = (f"x{i}",)
            relation.add(row)
            relation.remove(row)
        assert relation.log_length < 100
        assert relation.epoch > epoch
        assert relation.rows == set()

    def test_wholesale_operations_bump_the_epoch(self):
        relation = Relation(("a",), [("x",)])
        epoch = relation.epoch
        relation.replace_rows([("y",)])
        assert relation.epoch == epoch + 1
        relation.clear()
        assert relation.epoch == epoch + 2
        assert relation.log_length == 0


class TestCountedRelation:
    def test_row_appears_on_first_support(self):
        relation = CountedRelation(("a",))
        assert relation.add(("x",))
        assert not relation.add(("x",))
        assert relation.support(("x",)) == 2
        assert relation.rows == {("x",)}

    def test_row_disappears_with_last_support(self):
        relation = CountedRelation(("a",), [("x",), ("x",)])
        assert not relation.remove(("x",))
        assert ("x",) in relation
        assert relation.remove(("x",))
        assert len(relation) == 0
        assert relation.support(("x",)) == 0

    def test_removing_unsupported_row_is_a_noop(self):
        relation = CountedRelation(("a",))
        assert not relation.remove(("x",))

    def test_visibility_changes_are_logged_once(self):
        relation = CountedRelation(("a",))
        relation.add(("x",))
        relation.add(("x",))
        relation.remove(("x",))
        relation.remove(("x",))
        assert list(relation.deltas_since(0)) == [(("x",), 1), (("x",), -1)]

    def test_discard_drops_all_support(self):
        relation = CountedRelation(("a",), [("x",), ("x",)])
        assert relation.discard(("x",))
        assert relation.support(("x",)) == 0
        assert len(relation) == 0

    def test_replace_rows_recounts_support(self):
        relation = CountedRelation(("a",), [("x",)])
        relation.replace_rows([("y",), ("y",)])
        assert relation.rows == {("y",)}
        assert relation.support(("y",)) == 2
        assert not relation.remove(("y",))
        assert relation.remove(("y",))


class TestRelationalOperators:
    def test_project(self):
        relation = Relation(("a", "b"), [("1", "2"), ("1", "3")])
        projected = relation.project(("a",))
        assert projected.schema == ("a",)
        assert projected.rows == {("1",)}

    def test_rename(self):
        relation = Relation(("a", "b"), [("1", "2")])
        renamed = relation.rename({"a": "x"})
        assert renamed.schema == ("x", "b")
        assert renamed.rows == relation.rows

    def test_select_equal(self):
        relation = Relation(("a", "b"), [("1", "2"), ("3", "2"), ("1", "4")])
        assert relation.select_equal("a", "1").rows == {("1", "2"), ("1", "4")}

    def test_select_positions_equal(self):
        relation = Relation(("a", "b", "c"), [("x", "y", "x"), ("x", "y", "z")])
        filtered = relation.select_positions_equal([(0, 2)])
        assert filtered.rows == {("x", "y", "x")}

    def test_distinct_values(self):
        relation = Relation(("a", "b"), [("1", "2"), ("3", "2")])
        assert relation.distinct_values("b") == {"2"}


class TestNaturalJoin:
    def test_join_on_shared_column(self):
        left = Relation(("a", "b"), [("1", "x"), ("2", "y")])
        right = Relation(("b", "c"), [("x", "end"), ("z", "other")])
        joined = natural_join(left, right)
        assert joined.schema == ("a", "b", "c")
        assert joined.rows == {("1", "x", "end")}

    def test_join_without_shared_columns_is_cartesian(self):
        left = Relation(("a",), [("1",), ("2",)])
        right = Relation(("b",), [("x",)])
        joined = natural_join(left, right)
        assert joined.rows == {("1", "x"), ("2", "x")}

    def test_join_with_empty_side_is_empty(self):
        left = Relation(("a", "b"), [("1", "x")])
        right = Relation(("b", "c"))
        assert len(natural_join(left, right)) == 0

    def test_join_on_multiple_shared_columns(self):
        left = Relation(("a", "b"), [("1", "x"), ("1", "y")])
        right = Relation(("a", "b", "c"), [("1", "x", "q"), ("1", "z", "r")])
        joined = natural_join(left, right)
        assert joined.rows == {("1", "x", "q")}

    @given(
        st.sets(st.tuples(st.sampled_from("abc"), st.sampled_from("xyz")), max_size=12),
        st.sets(st.tuples(st.sampled_from("xyz"), st.sampled_from("pq")), max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_join_matches_nested_loop_reference(self, left_rows, right_rows):
        left = Relation(("a", "b"), left_rows)
        right = Relation(("b", "c"), right_rows)
        expected = {
            (la, lb, rc) for la, lb in left_rows for rb, rc in right_rows if lb == rb
        }
        assert natural_join(left, right).rows == expected

    @given(
        st.sets(st.tuples(st.sampled_from("abc"), st.sampled_from("xyz")), max_size=10),
        st.sets(st.tuples(st.sampled_from("xyz"), st.sampled_from("pq")), max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_join_is_symmetric_in_content(self, left_rows, right_rows):
        left = Relation(("a", "b"), left_rows)
        right = Relation(("b", "c"), right_rows)
        forward = natural_join(left, right)
        backward = natural_join(right, left)
        # Same tuples, possibly different column order.
        realigned = {tuple(row[backward.schema.index(c)] for c in forward.schema) for row in backward.rows}
        assert realigned == forward.rows


class TestExtendPathRows:
    def test_forward_extension(self):
        base = Relation(("s", "t"), [("b", "c"), ("b", "d"), ("x", "y")])
        extended = extend_path_rows([("a", "b")], base)
        assert set(extended) == {("a", "b", "c"), ("a", "b", "d")}

    def test_backward_extension(self):
        base = Relation(("s", "t"), [("a", "b"), ("z", "b"), ("q", "r")])
        extended = extend_path_rows([("b", "c")], base, direction="backward")
        assert set(extended) == {("a", "b", "c"), ("z", "b", "c")}

    def test_unknown_direction_raises(self):
        with pytest.raises(ValueError):
            extend_path_rows([("a", "b")], Relation(("s", "t")), direction="sideways")

    def test_no_match_yields_empty(self):
        base = Relation(("s", "t"), [("x", "y")])
        assert extend_path_rows([("a", "b")], base) == []
