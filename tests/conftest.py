"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import QueryBuilder, add
from repro.graph import GraphStream
from repro.query import QueryGraphPattern


@pytest.fixture
def checkin_query() -> QueryGraphPattern:
    """The paper's running example: two acquainted people check in at one place."""
    return (
        QueryBuilder("checkin")
        .edge("knows", "?p1", "?p2")
        .edge("checksIn", "?p1", "?place")
        .edge("checksIn", "?p2", "?place")
        .build()
    )


@pytest.fixture
def paper_fig4_queries() -> list[QueryGraphPattern]:
    """The four query graph patterns of the paper's Fig. 4(a)."""
    q1 = QueryGraphPattern(
        "Q1",
        [
            ("hasMod", "?f1", "?p1"),
            ("posted", "?p1", "pst1"),
            ("posted", "?p1", "pst2"),
            ("reply", "?com1", "pst2"),
        ],
    )
    q2 = QueryGraphPattern("Q2", [("hasMod", "?f1", "?p1")])
    q3 = QueryGraphPattern(
        "Q3",
        [
            ("hasCreator", "com1", "?p1"),
            ("posted", "?p1", "pst1"),
            ("containedIn", "pst1", "?f2"),
        ],
    )
    q4 = QueryGraphPattern(
        "Q4",
        [
            ("hasMod", "?f1", "?p1"),
            ("posted", "?p1", "pst1"),
            ("containedIn", "pst1", "?f2"),
        ],
    )
    return [q1, q2, q3, q4]


@pytest.fixture
def checkin_stream() -> GraphStream:
    """A small stream that satisfies the check-in query exactly once."""
    return GraphStream(
        [
            add("knows", "P1", "P2"),
            add("checksIn", "P1", "rio"),
            add("checksIn", "P3", "rio"),
            add("checksIn", "P2", "rio"),
        ],
        name="checkin",
    )
