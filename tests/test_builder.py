"""Unit tests for the fluent query builder."""

from __future__ import annotations

import pytest

from repro.graph.errors import QueryError
from repro.query import QueryBuilder
from repro.query.terms import Literal, Variable


class TestQueryBuilder:
    def test_build_simple_query(self):
        query = QueryBuilder("q").edge("knows", "?a", "?b").build()
        assert query.query_id == "q"
        assert query.num_edges == 1
        assert query.edges[0].source == Variable("a")

    def test_edge_returns_self_for_chaining(self):
        builder = QueryBuilder("q")
        assert builder.edge("knows", "?a", "?b") is builder

    def test_literal_terms(self):
        query = QueryBuilder("q").edge("posted", "?p", "pst1").build()
        assert query.edges[0].target == Literal("pst1")

    def test_num_edges_property(self):
        builder = QueryBuilder("q").edge("a", "?x", "?y")
        assert builder.num_edges == 1

    def test_chain_helper(self):
        query = QueryBuilder("q").chain("knows", "?a", "?b", "?c").build()
        assert query.num_edges == 2
        assert query.is_chain()

    def test_chain_requires_two_vertices(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").chain("knows", "?a")

    def test_empty_label_rejected(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").edge("", "?a", "?b")

    def test_empty_build_rejected(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").build()

    def test_disconnected_pattern_rejected(self):
        builder = QueryBuilder("q").edge("a", "?x", "?y").edge("b", "?u", "?v")
        with pytest.raises(QueryError):
            builder.build()

    def test_connected_through_literal_is_accepted(self):
        query = (
            QueryBuilder("q")
            .edge("posted", "?a", "pst1")
            .edge("containedIn", "pst1", "?f")
            .build()
        )
        assert query.num_edges == 2

    def test_custom_name(self):
        query = QueryBuilder("q", name="pretty").edge("a", "?x", "?y").build()
        assert query.name == "pretty"
