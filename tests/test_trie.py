"""Tests for the trie forest that clusters covering paths."""

from __future__ import annotations

import pytest

from repro.core.trie import Trie, TrieForest, TrieNode
from repro.query import QueryGraphPattern, covering_paths
from repro.query.terms import ANY, EdgeKey

K_HASMOD = EdgeKey("hasMod", ANY, ANY)
K_POSTED1 = EdgeKey("posted", ANY, "pst1")
K_POSTED2 = EdgeKey("posted", ANY, "pst2")
K_CONTAINED = EdgeKey("containedIn", "pst1", ANY)


class TestTrieNode:
    def test_root_node_properties(self):
        root = TrieNode(K_HASMOD, None)
        assert root.is_root
        assert root.depth == 1
        assert root.view.schema == ("p0", "p1")

    def test_child_depth_and_schema(self):
        root = TrieNode(K_HASMOD, None)
        child = root.add_child(K_POSTED1)
        assert child.depth == 2
        assert child.parent is root
        assert child.view.schema == ("p0", "p1", "p2")

    def test_add_child_reuses_existing(self):
        root = TrieNode(K_HASMOD, None)
        first = root.add_child(K_POSTED1)
        second = root.add_child(K_POSTED1)
        assert first is second
        assert len(root.children) == 1

    def test_descendants(self):
        root = TrieNode(K_HASMOD, None)
        child = root.add_child(K_POSTED1)
        grandchild = child.add_child(K_CONTAINED)
        assert {node.node_id for node in root.descendants()} == {
            root.node_id,
            child.node_id,
            grandchild.node_id,
        }


class TestTrie:
    def test_insert_path_and_sharing(self):
        trie = Trie(K_HASMOD)
        terminal_a = trie.insert_path([K_HASMOD, K_POSTED1, K_CONTAINED])
        terminal_b = trie.insert_path([K_HASMOD, K_POSTED1])
        terminal_c = trie.insert_path([K_HASMOD, K_POSTED2])
        assert terminal_b is terminal_a.parent
        assert terminal_c is not terminal_b
        assert trie.num_nodes() == 4  # hasMod, posted-pst1, containedIn, posted-pst2

    def test_insert_path_must_start_with_root_key(self):
        trie = Trie(K_HASMOD)
        with pytest.raises(ValueError):
            trie.insert_path([K_POSTED1])

    def test_nodes_with_key(self):
        trie = Trie(K_HASMOD)
        trie.insert_path([K_HASMOD, K_POSTED1])
        trie.insert_path([K_HASMOD, K_POSTED2])
        assert len(trie.nodes_with_key(K_POSTED1)) == 1
        assert len(trie.nodes_with_key(K_HASMOD)) == 1
        assert trie.contains_key(K_POSTED2)
        assert not trie.contains_key(K_CONTAINED)


class TestTrieForest:
    def test_index_path_creates_tries_per_root_key(self):
        forest = TrieForest()
        forest.index_path([K_HASMOD, K_POSTED1])
        forest.index_path([K_POSTED1])
        assert forest.num_tries() == 2
        assert set(forest.roots) == {K_HASMOD, K_POSTED1}

    def test_edge_index_lists_tries_containing_a_key(self):
        forest = TrieForest()
        forest.index_path([K_HASMOD, K_POSTED1])
        forest.index_path([K_POSTED1, K_CONTAINED])
        tries = forest.tries_containing(K_POSTED1)
        assert len(tries) == 2
        assert len(forest.nodes_with_key(K_POSTED1)) == 2

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            TrieForest().index_path([])

    def test_shared_prefixes_share_nodes_across_queries(self, paper_fig4_queries):
        """Fig. 6 of the paper: Q1, Q2 and Q4 cluster under the same trie."""
        forest = TrieForest()
        total_path_edges = 0
        for pattern in paper_fig4_queries:
            for path in covering_paths(pattern):
                forest.index_path(path.key_sequence())
                total_path_edges += path.length
        # Clustering means strictly fewer trie nodes than indexed path edges.
        assert forest.num_nodes() < total_path_edges
        # The hasMod-rooted trie is shared by Q1, Q2 and Q4.
        hasmod_trie = forest.roots[K_HASMOD]
        assert hasmod_trie.num_nodes() >= 3

    def test_all_keys(self):
        forest = TrieForest()
        forest.index_path([K_HASMOD, K_POSTED1])
        assert forest.all_keys() == {K_HASMOD, K_POSTED1}
        assert forest.contains_key(K_HASMOD)
        assert not forest.contains_key(K_CONTAINED)

    def test_nodes_iterates_every_node(self):
        forest = TrieForest()
        forest.index_path([K_HASMOD, K_POSTED1])
        forest.index_path([K_POSTED2])
        assert len(list(forest.nodes())) == forest.num_nodes() == 3
