"""Unit tests for graph streams."""

from __future__ import annotations

import pytest

from repro.graph import Edge, GraphStream, StreamError, add, delete


@pytest.fixture
def stream() -> GraphStream:
    return GraphStream(
        [add("knows", "a", "b"), add("likes", "a", "p"), delete("likes", "a", "p")],
        name="tiny",
    )


class TestConstruction:
    def test_timestamps_are_renumbered(self, stream):
        assert [u.timestamp for u in stream] == [0, 1, 2]

    def test_from_edges(self):
        stream = GraphStream.from_edges([Edge("l", "a", "b"), Edge("l", "b", "c")])
        assert len(stream) == 2
        assert all(u.is_addition for u in stream)

    def test_from_triples(self):
        stream = GraphStream.from_triples([("l", "a", "b")])
        assert stream[0].edge == Edge("l", "a", "b")

    def test_append_and_extend(self):
        stream = GraphStream()
        stream.append(add("l", "a", "b"))
        stream.extend([add("l", "b", "c"), add("l", "c", "d")])
        assert len(stream) == 3
        assert [u.timestamp for u in stream] == [0, 1, 2]


class TestSlicing:
    def test_prefix(self, stream):
        prefix = stream.prefix(2)
        assert len(prefix) == 2
        assert isinstance(prefix, GraphStream)

    def test_prefix_negative_raises(self, stream):
        with pytest.raises(StreamError):
            stream.prefix(-1)

    def test_getitem_slice_returns_stream(self, stream):
        assert isinstance(stream[0:2], GraphStream)
        assert len(stream[0:2]) == 2

    def test_getitem_index_returns_update(self, stream):
        assert stream[0].edge == Edge("knows", "a", "b")

    def test_batches(self, stream):
        batches = list(stream.batches(2))
        assert [len(b) for b in batches] == [2, 1]

    def test_batches_invalid_size(self, stream):
        with pytest.raises(StreamError):
            list(stream.batches(0))

    def test_additions_only(self, stream):
        additions = stream.additions_only()
        assert len(additions) == 2
        assert all(u.is_addition for u in additions)


class TestMaterialisation:
    def test_to_graph_applies_all_updates(self, stream):
        graph = stream.to_graph()
        assert graph.has_edge(Edge("knows", "a", "b"))
        assert not graph.has_edge(Edge("likes", "a", "p"))

    def test_statistics(self, stream):
        stats = stream.statistics()
        assert stats.num_updates == 3
        assert stats.num_additions == 2
        assert stats.num_deletions == 1
        assert stats.num_vertices == 3
        assert stats.num_edge_labels == 2
        assert stats.label_histogram["likes"] == 2

    def test_updates_returns_tuple(self, stream):
        assert isinstance(stream.updates(), tuple)
        assert len(stream.updates()) == 3
