"""Unit tests for graph primitives: edges, updates, and stream helpers."""

from __future__ import annotations

import pytest

from repro.graph.elements import Edge, Update, UpdateKind, add, delete, renumber


class TestEdge:
    def test_edge_fields(self):
        edge = Edge("knows", "alice", "bob")
        assert edge.label == "knows"
        assert edge.source == "alice"
        assert edge.target == "bob"

    def test_endpoints(self):
        assert Edge("knows", "a", "b").endpoints() == ("a", "b")

    def test_reversed_swaps_endpoints(self):
        assert Edge("knows", "a", "b").reversed() == Edge("knows", "b", "a")

    def test_edges_are_hashable_and_comparable(self):
        assert Edge("l", "a", "b") == Edge("l", "a", "b")
        assert Edge("l", "a", "b") != Edge("l", "b", "a")
        assert len({Edge("l", "a", "b"), Edge("l", "a", "b")}) == 1

    def test_str_rendering(self):
        assert "knows" in str(Edge("knows", "a", "b"))


class TestUpdate:
    def test_default_kind_is_addition(self):
        update = Update(Edge("l", "a", "b"))
        assert update.kind is UpdateKind.ADD
        assert update.is_addition
        assert not update.is_deletion

    def test_add_helper(self):
        update = add("likes", "u", "p", timestamp=3)
        assert update.edge == Edge("likes", "u", "p")
        assert update.is_addition
        assert update.timestamp == 3

    def test_delete_helper(self):
        update = delete("likes", "u", "p")
        assert update.is_deletion
        assert update.kind is UpdateKind.DELETE

    def test_with_timestamp_returns_new_update(self):
        original = add("l", "a", "b")
        stamped = original.with_timestamp(9)
        assert stamped.timestamp == 9
        assert original.timestamp == 0
        assert stamped.edge == original.edge

    def test_updates_are_immutable(self):
        update = add("l", "a", "b")
        with pytest.raises(AttributeError):
            update.timestamp = 5  # type: ignore[misc]

    def test_str_includes_sign(self):
        assert str(add("l", "a", "b")).startswith("+")
        assert str(delete("l", "a", "b")).startswith("-")


class TestRenumber:
    def test_renumber_assigns_consecutive_timestamps(self):
        updates = [add("l", "a", "b"), add("l", "b", "c"), delete("l", "a", "b")]
        renumbered = list(renumber(updates))
        assert [u.timestamp for u in renumbered] == [0, 1, 2]

    def test_renumber_with_start(self):
        renumbered = list(renumber([add("l", "a", "b")], start=10))
        assert renumbered[0].timestamp == 10

    def test_renumber_preserves_kind_and_edge(self):
        renumbered = list(renumber([delete("l", "x", "y")]))
        assert renumbered[0].is_deletion
        assert renumbered[0].edge == Edge("l", "x", "y")
