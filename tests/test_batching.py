"""Batched processing must be answer-equivalent to per-update processing.

The unified delta pipeline promises that driving any engine through
micro-batches (``on_batch``) yields, for every batch window, exactly the
union of the notifications a per-update replay of that window would emit —
and leaves the engine in an identical state (same satisfied set, same
``matches_of`` answers).  These tests replay random mixed add/delete streams
through every engine twice and compare the two drives window by window.
"""

from __future__ import annotations

import random

import pytest

from repro import ENGINE_FACTORIES, TRICEngine, TRICPlusEngine, add, create_engine, delete
from repro.baselines.naive import NaiveEngine
from repro.core.engine import ContinuousEngine
from repro.streams import StreamRunner

from test_equivalence import _random_query

ALL_ENGINE_NAMES = list(ENGINE_FACTORIES)


def _random_stream(rng: random.Random, num_updates: int, deletion_rate: float):
    labels = ["knows", "likes", "posted"]
    vertices = [f"v{i}" for i in range(8)]
    live = []
    updates = []
    for _ in range(num_updates):
        if live and rng.random() < deletion_rate:
            edge = live.pop(rng.randrange(len(live)))
            updates.append(delete(edge.label, edge.source, edge.target))
        else:
            update = add(rng.choice(labels), rng.choice(vertices), rng.choice(vertices))
            live.append(update.edge)
            updates.append(update)
    return updates


def _random_workload(seed: int, num_queries: int = 8):
    rng = random.Random(seed)
    labels = ["knows", "likes", "posted"]
    vertices = [f"v{i}" for i in range(8)]
    return rng, [_random_query(rng, f"Q{i}", labels, vertices) for i in range(num_queries)]


class TestBatchedEquivalence:
    @pytest.mark.parametrize("engine_name", ALL_ENGINE_NAMES)
    @pytest.mark.parametrize("batch_size", [3, 16, 256])
    def test_batched_drive_equals_per_update_drive(self, engine_name, batch_size):
        rng, queries = _random_workload(seed=5)
        updates = _random_stream(rng, num_updates=100, deletion_rate=0.25)

        per_update = create_engine(engine_name)
        batched = create_engine(engine_name)
        for engine in (per_update, batched):
            engine.register_all(queries)

        for start in range(0, len(updates), batch_size):
            window = updates[start : start + batch_size]
            union = frozenset().union(*(per_update.on_update(u) for u in window))
            assert batched.on_batch(window) == union, f"window at {start}"

        assert batched.satisfied_queries() == per_update.satisfied_queries()
        assert batched.updates_processed == per_update.updates_processed
        for query in queries:
            assert batched.matches_of(query.query_id) == per_update.matches_of(query.query_id)

    @pytest.mark.parametrize("engine_name", ALL_ENGINE_NAMES)
    def test_single_update_batch_equals_on_update(self, engine_name):
        rng, queries = _random_workload(seed=9, num_queries=5)
        updates = _random_stream(rng, num_updates=60, deletion_rate=0.2)
        one_by_one = create_engine(engine_name)
        batched = create_engine(engine_name)
        for engine in (one_by_one, batched):
            engine.register_all(queries)
        for update in updates:
            assert batched.on_batch([update]) == one_by_one.on_update(update)


class _FallbackNaive(NaiveEngine):
    """Naive engine with the base class's per-update batch fallbacks."""

    _on_addition_batch = ContinuousEngine._on_addition_batch
    _on_deletion_batch = ContinuousEngine._on_deletion_batch


class TestFallbackBatching:
    def test_fallback_agrees_with_native_batching(self):
        rng, queries = _random_workload(seed=13, num_queries=6)
        updates = _random_stream(rng, num_updates=80, deletion_rate=0.3)
        fallback = _FallbackNaive()
        native = NaiveEngine()
        for engine in (fallback, native):
            engine.register_all(queries)
        for start in range(0, len(updates), 7):
            window = updates[start : start + 7]
            assert fallback.on_batch(window) == native.on_batch(window)
        assert fallback.satisfied_queries() == native.satisfied_queries()


class TestDeletionHotPath:
    def test_counting_deletions_never_rebuild_wholesale(self, monkeypatch):
        """No relation on the stream path is replaced wholesale by a deletion.

        ``Relation.replace_rows`` is the wholesale-rebuild primitive (it
        bumps the epoch and re-buckets every maintained index); with the
        counting delta pipeline it must never run while updates stream
        through an already indexed engine.
        """
        from repro.matching.relation import Relation

        engine = TRICPlusEngine()
        rng, queries = _random_workload(seed=21, num_queries=6)
        engine.register_all(queries)

        def _no_rebuild(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("counting deletions must not rebuild wholesale")

        monkeypatch.setattr(Relation, "replace_rows", _no_rebuild)
        for update in _random_stream(rng, num_updates=120, deletion_rate=0.4):
            engine.on_update(update)
            for query in queries[:2]:
                engine.matches_of(query.query_id)

    def test_binding_cache_survives_deletions(self):
        engine = TRICPlusEngine()
        rng, queries = _random_workload(seed=23, num_queries=6)
        engine.register_all(queries)
        updates = _random_stream(rng, num_updates=80, deletion_rate=0.0)
        for update in updates:
            engine.on_update(update)
        populated = len(engine._binding_cache)
        edge = updates[0].edge
        engine.on_update(delete(edge.label, edge.source, edge.target))
        assert len(engine._binding_cache) >= populated  # patched, not cleared

    def test_base_and_materialising_variants_agree_under_churn(self):
        rng, queries = _random_workload(seed=31, num_queries=8)
        updates = _random_stream(rng, num_updates=100, deletion_rate=0.3)
        plain = TRICEngine()
        materialising = TRICPlusEngine()
        for engine in (plain, materialising):
            engine.register_all(queries)
        for update in updates:
            assert plain.on_update(update) == materialising.on_update(update)
        for query in queries:
            assert plain.matches_of(query.query_id) == materialising.matches_of(query.query_id)


class TestBatchedStreamRunner:
    def test_batched_replay_processes_every_update(self, checkin_query, checkin_stream):
        runner = StreamRunner(TRICPlusEngine(), batch_size=3)
        runner.index_queries([checkin_query])
        result = runner.replay(checkin_stream)
        assert result.completed
        assert result.batch_size == 3
        assert result.updates_processed == len(checkin_stream)
        # ceil(4 / 3) == 2 micro-batches were timed.
        assert result.answering.count == 2
        assert result.matches_emitted == 1
        assert result.as_dict()["batch_size"] == 3

    def test_batched_replay_notifies_listeners_once_per_batch(self, checkin_query, checkin_stream):
        received = []
        with pytest.warns(DeprecationWarning, match="SubscriptionBroker"):
            runner = StreamRunner(
                TRICEngine(),
                batch_size=len(checkin_stream),
                listeners=[lambda update, matched: received.append((update, matched))],
            )
        runner.index_queries([checkin_query])
        runner.replay(checkin_stream)
        assert len(received) == 1
        update, matched = received[0]
        assert matched == frozenset({"checkin"})
        assert update == list(checkin_stream)[-1]

    def test_batched_and_per_update_replays_agree_on_matches(self):
        rng, queries = _random_workload(seed=41, num_queries=6)
        updates = _random_stream(rng, num_updates=90, deletion_rate=0.2)
        results = {}
        for batch_size in (1, 16):
            engine = TRICPlusEngine()
            runner = StreamRunner(engine, batch_size=batch_size)
            runner.index_queries(queries)
            runner.replay(updates)
            results[batch_size] = engine.satisfied_queries()
        assert results[1] == results[16]

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            StreamRunner(TRICEngine(), batch_size=0)
