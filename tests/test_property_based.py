"""Property-based tests (hypothesis) over the core data structures and engines.

The central property is the one the whole repository rests on: for any query
set and any update stream, the incremental engines report exactly the same
per-update answers as the naive re-evaluation oracle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NaiveEngine, TRICEngine, TRICPlusEngine, add, delete
from repro.baselines.inc import INCPlusEngine
from repro.baselines.inv import INVEngine
from repro.graph import Edge, Graph
from repro.matching.evaluator import find_embeddings
from repro.matching.relation import Relation, natural_join
from repro.query import QueryGraphPattern, covering_paths

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
LABELS = ("a", "b")
VERTICES = ("v0", "v1", "v2", "v3")
TERMS = ("?x", "?y", "?z", "v0", "v1")


@st.composite
def connected_patterns(draw):
    """Small connected query patterns over a tiny vocabulary."""
    num_edges = draw(st.integers(min_value=1, max_value=3))
    edges = []
    terms = [draw(st.sampled_from(TERMS))]
    for i in range(num_edges):
        label = draw(st.sampled_from(LABELS))
        anchor = draw(st.sampled_from(terms))
        other = draw(st.sampled_from(TERMS))
        if draw(st.booleans()):
            edges.append((label, anchor, other))
        else:
            edges.append((label, other, anchor))
        terms.append(other)
    # Guarantee at least one variable so this is a pattern, not a fact.
    if not any(t.startswith("?") for triple in edges for t in triple[1:]):
        label, _, target = edges[0]
        edges[0] = (label, "?x", target)
    return QueryGraphPattern(draw(st.uuids()).hex, edges)


edge_streams = st.lists(
    st.tuples(st.sampled_from(LABELS), st.sampled_from(VERTICES), st.sampled_from(VERTICES)),
    min_size=1,
    max_size=25,
)


@st.composite
def mixed_update_streams(draw):
    """Interleaved additions and deletions; deletions retract live edges."""
    events = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=2**16),
                st.sampled_from(LABELS),
                st.sampled_from(VERTICES),
                st.sampled_from(VERTICES),
            ),
            min_size=1,
            max_size=30,
        )
    )
    live, updates = [], []
    for is_deletion, pick, label, source, target in events:
        if is_deletion and live:
            edge = live.pop(pick % len(live))
            updates.append(delete(edge.label, edge.source, edge.target))
        else:
            update = add(label, source, target)
            live.append(update.edge)
            updates.append(update)
    return updates


# ----------------------------------------------------------------------
# Relation algebra properties
# ----------------------------------------------------------------------
rows_ab = st.sets(st.tuples(st.sampled_from("12"), st.sampled_from("xy")), max_size=8)
rows_bc = st.sets(st.tuples(st.sampled_from("xy"), st.sampled_from("pq")), max_size=8)
rows_cd = st.sets(st.tuples(st.sampled_from("pq"), st.sampled_from("mn")), max_size=8)


class TestRelationAlgebraProperties:
    @given(rows_ab, rows_bc, rows_cd)
    @settings(max_examples=50, deadline=None)
    def test_natural_join_is_associative_on_chains(self, ab, bc, cd):
        r_ab = Relation(("a", "b"), ab)
        r_bc = Relation(("b", "c"), bc)
        r_cd = Relation(("c", "d"), cd)
        left_first = natural_join(natural_join(r_ab, r_bc), r_cd)
        right_first = natural_join(r_ab, natural_join(r_bc, r_cd))
        assert left_first.rows == right_first.rows

    @given(rows_ab)
    @settings(max_examples=30, deadline=None)
    def test_join_with_itself_is_identity(self, ab):
        relation = Relation(("a", "b"), ab)
        assert natural_join(relation, relation).rows == relation.rows

    @given(rows_ab, rows_bc)
    @settings(max_examples=30, deadline=None)
    def test_join_never_invents_values(self, ab, bc):
        joined = natural_join(Relation(("a", "b"), ab), Relation(("b", "c"), bc))
        seen = {value for row in ab | bc for value in row}
        assert all(value in seen for row in joined.rows for value in row)


# ----------------------------------------------------------------------
# Covering-path and engine properties
# ----------------------------------------------------------------------
class TestCoveringPathProperties:
    @given(connected_patterns())
    @settings(max_examples=50, deadline=None)
    def test_decomposition_preserves_the_edge_multiset(self, pattern):
        paths = covering_paths(pattern)
        covered = {index for path in paths for index in path.edge_indices()}
        assert covered == {edge.index for edge in pattern.edges}


class TestEngineEquivalenceProperties:
    @given(st.lists(connected_patterns(), min_size=1, max_size=3), edge_streams)
    @settings(max_examples=25, deadline=None)
    def test_tric_agrees_with_the_oracle(self, patterns, triples):
        patterns = _unique_ids(patterns)
        tric, oracle = TRICEngine(), NaiveEngine()
        for engine in (tric, oracle):
            engine.register_all(patterns)
        for label, source, target in triples:
            update = add(label, source, target)
            assert tric.on_update(update) == oracle.on_update(update)
        assert tric.satisfied_queries() == oracle.satisfied_queries()

    @given(st.lists(connected_patterns(), min_size=1, max_size=3), edge_streams)
    @settings(max_examples=15, deadline=None)
    def test_caching_never_changes_answers(self, patterns, triples):
        patterns = _unique_ids(patterns)
        cached, plain = TRICPlusEngine(), TRICEngine()
        for engine in (cached, plain):
            engine.register_all(patterns)
        for label, source, target in triples:
            update = add(label, source, target)
            assert cached.on_update(update) == plain.on_update(update)

    @given(st.lists(connected_patterns(), min_size=1, max_size=2), edge_streams)
    @settings(max_examples=15, deadline=None)
    def test_inverted_index_baselines_agree_with_the_oracle(self, patterns, triples):
        patterns = _unique_ids(patterns)
        engines = [INVEngine(), INCPlusEngine(), NaiveEngine()]
        for engine in engines:
            engine.register_all(patterns)
        for label, source, target in triples:
            update = add(label, source, target)
            answers = [engine.on_update(update) for engine in engines]
            assert answers[0] == answers[2]
            assert answers[1] == answers[2]

    @given(st.lists(connected_patterns(), min_size=1, max_size=2), edge_streams)
    @settings(max_examples=15, deadline=None)
    def test_final_matches_equal_graph_level_embeddings(self, patterns, triples):
        """After the whole stream, matches_of must equal the embeddings of the
        final graph (queries registered before any update arrive)."""
        patterns = _unique_ids(patterns)
        engine = TRICEngine()
        engine.register_all(patterns)
        graph = Graph()
        for label, source, target in triples:
            engine.on_update(add(label, source, target))
            graph.add_edge(Edge(label, source, target))
        for pattern in patterns:
            expected = {
                tuple(sorted(assignment.items()))
                for assignment in find_embeddings(graph, pattern)
            }
            actual = {
                tuple(sorted(assignment.items()))
                for assignment in engine.matches_of(pattern.query_id)
            }
            assert actual == expected


class TestDeletionAndBatchingProperties:
    """The unified delta pipeline's core properties.

    For any query set and any interleaved add/delete stream, (1) the
    counting-based incremental engines agree with the naive oracle update by
    update, and (2) driving an engine through micro-batches of any size is
    answer-equivalent to driving it per update.
    """

    @given(st.lists(connected_patterns(), min_size=1, max_size=3), mixed_update_streams())
    @settings(max_examples=20, deadline=None)
    def test_counting_deletions_agree_with_the_oracle(self, patterns, updates):
        patterns = _unique_ids(patterns)
        tric, tric_plus, oracle = TRICEngine(), TRICPlusEngine(), NaiveEngine()
        for engine in (tric, tric_plus, oracle):
            engine.register_all(patterns)
        for update in updates:
            expected = oracle.on_update(update)
            assert tric.on_update(update) == expected
            assert tric_plus.on_update(update) == expected
        assert tric.satisfied_queries() == oracle.satisfied_queries()
        assert tric_plus.satisfied_queries() == oracle.satisfied_queries()
        for pattern in patterns:
            expected = oracle.matches_of(pattern.query_id)
            assert tric.matches_of(pattern.query_id) == expected
            assert tric_plus.matches_of(pattern.query_id) == expected

    @given(
        st.lists(connected_patterns(), min_size=1, max_size=3),
        mixed_update_streams(),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=20, deadline=None)
    def test_batched_drive_is_answer_equivalent(self, patterns, updates, batch_size):
        patterns = _unique_ids(patterns)
        for factory in (TRICPlusEngine, NaiveEngine):
            per_update, batched = factory(), factory()
            for engine in (per_update, batched):
                engine.register_all(patterns)
            for start in range(0, len(updates), batch_size):
                window = updates[start : start + batch_size]
                union = frozenset().union(*(per_update.on_update(u) for u in window))
                assert batched.on_batch(window) == union
            assert batched.satisfied_queries() == per_update.satisfied_queries()
            for pattern in patterns:
                assert batched.matches_of(pattern.query_id) == per_update.matches_of(
                    pattern.query_id
                )


def _unique_ids(patterns):
    """Give every generated pattern a unique query id."""
    unique = []
    for index, pattern in enumerate(patterns):
        unique.append(QueryGraphPattern(f"Q{index}", [
            (edge.label, edge.source, edge.target) for edge in pattern.edges
        ]))
    return unique
