"""Regression pins for the soft spots the scenario matrix exposes.

ROADMAP item 3 predicted the synthetic scenarios would stress two known
weaknesses: the lazy-deletion caches of the ``+`` tier (INV+/INC+) must
still *converge* to their base engines' answers under churn-heavy
add/delete streams, and the append-only :class:`VertexInterner` grows
monotonically on long soaks (ids are never recycled — the measurement
that motivates id recycling / epoch compaction later).  These tests pin
both behaviours so a regression (divergence) or an unnoticed change in
the growth contract fails loudly.

The broker tests cover the remaining matrix dimension: mid-stream
subscribe/unsubscribe at the generated churn rate must reconstruct
``matches_of`` exactly from the delivered deltas under *every* overflow
policy (DROP_OLDEST sized to never drop, COALESCE resyncing through
snapshots, BLOCK growing past capacity).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import SCENARIOS, generate_workload, run_workload
from repro.engines import create_engine
from repro.pubsub import SubscriptionBroker, canonical_key, replay_deltas

#: Small but non-trivial scale for the churn/soak cells under tier-1.
TEST_SCALE = 0.1


def _answer_set(engine, query_id):
    return {canonical_key(binding) for binding in engine.matches_of(query_id)}


class TestPlusTierConvergence:
    """INV+/INC+ lazy caches must converge to their base engines."""

    @pytest.mark.parametrize("base,plus", [("INV", "INV+"), ("INC", "INC+")])
    @pytest.mark.parametrize("scenario", ["churn_heavy", "delete_heavy"])
    def test_plus_tier_matches_base_on_churny_streams(self, base, plus, scenario):
        workload = generate_workload(SCENARIOS[scenario].scaled(TEST_SCALE))
        base_result = run_workload(workload, base)
        plus_result = run_workload(workload, plus)
        assert base_result.transcript == plus_result.transcript, (
            f"{plus} diverged from {base} on the {scenario} scenario"
        )


class TestInternerGrowthOnSoak:
    """The append-only interner's growth is bounded and measured."""

    def test_soak_live_ids_grow_monotonically_within_the_universe(self):
        spec = SCENARIOS["soak"].scaled(TEST_SCALE)
        workload = generate_workload(spec)
        engine = create_engine("TRIC+")
        try:
            engine.register_all(workload.queries)
            growth = []
            for chunk in workload.iter_ticks():
                engine.on_batch(chunk)
                growth.append(engine.describe()["interner"]["live_ids"])
        finally:
            if hasattr(engine, "close"):
                engine.close()
        # Measured: nearly half the soak's updates are deletions, yet the
        # live-id count never decreases — ids are append-only, which is
        # exactly the compaction concern this pin documents.
        assert all(a <= b for a, b in zip(growth, growth[1:]))
        assert growth[0] <= growth[-1]
        # Bounded: interning is lazy (only vertices the engine touches get
        # ids), so the spec's vertex universe plus interned query literals
        # caps growth no matter how long the soak runs.
        stream_vertices = set()
        for update in workload.stream:
            stream_vertices.add(update.edge.source)
            stream_vertices.add(update.edge.target)
        literals = {
            str(literal)
            for pattern in workload.queries
            for literal in pattern.literals()
        }
        assert 0 < growth[-1] <= len(stream_vertices | literals) <= spec.num_vertices

    def test_soak_cell_records_interner_growth(self):
        """The matrix cell itself carries the measurement."""
        workload = generate_workload(SCENARIOS["soak"].scaled(0.05))
        cell = run_workload(workload, "TRIC+").as_dict()
        assert "interner_live_ids" in cell
        assert cell["interner_live_ids"] > 0


class TestBrokerDeliveryUnderChurn:
    """Churn-rate subscribe/unsubscribe reconstructs matches_of exactly.

    The generated churn plan drives real mid-stream subscription turnover;
    each listener's accumulated deltas (drained on a cadence that forces
    queue pressure at small capacities) must fold — via the
    ``replay_deltas`` consumer contract — into exactly the engine's
    current answer set at unsubscribe time and at end of stream.
    """

    #: (policy, capacity, exact): DROP_OLDEST is lossy by design, so its
    #: exactness is only guaranteed with capacity ample for the drain
    #: cadence; COALESCE recovers exactness through snapshot resyncs and
    #: BLOCK through unbounded growth, so both stay exact even starved.
    POLICIES = [("drop-oldest", 1 << 16), ("coalesce", 2), ("block", 2)]
    DRAIN_EVERY = 7

    @pytest.mark.parametrize("policy,capacity", POLICIES)
    @pytest.mark.parametrize("engine_name", ["TRIC+", "INV"])
    def test_churned_subscriptions_reconstruct_matches_of(
        self, policy, capacity, engine_name
    ):
        workload = generate_workload(SCENARIOS["churn_heavy"].scaled(TEST_SCALE))
        assert workload.churn, "churn_heavy must generate churn events"
        engine = create_engine(engine_name)
        engine.register_all(workload.queries)
        broker = SubscriptionBroker(
            engine, default_policy=policy, default_capacity=capacity
        )

        subscriptions = {}  # query id -> (subscription, accumulated deltas)
        checked = 0
        for tick_index, chunk in enumerate(workload.iter_ticks()):
            broker.on_batch(chunk)
            if tick_index % self.DRAIN_EVERY == 0:
                for subscription, received in subscriptions.values():
                    received.extend(subscription.drain())
            for event in workload.churn_at(tick_index):
                if event.action == "subscribe":
                    subscription = broker.subscribe(
                        f"listener-{event.query_id}-{tick_index}", [event.query_id]
                    )
                    subscriptions[event.query_id] = (subscription, [])
                else:
                    subscription, received = subscriptions.pop(event.query_id)
                    received.extend(subscription.drain())
                    state = replay_deltas(received).get(event.query_id, set())
                    assert state == _answer_set(engine, event.query_id)
                    checked += 1
                    broker.unsubscribe(subscription.name)

        for query_id, (subscription, received) in subscriptions.items():
            received.extend(subscription.drain())
            state = replay_deltas(received).get(query_id, set())
            assert state == _answer_set(engine, query_id)
            checked += 1
        assert checked > 0, "the churn plan must exercise reconstruction"
