"""Tests for the TRIC / TRIC+ engines (the paper's core contribution)."""

from __future__ import annotations

import pytest

from repro import TRICEngine, TRICPlusEngine, add, delete
from repro.graph.errors import DuplicateQueryError, UnknownQueryError
from repro.query import QueryBuilder, QueryGraphPattern


@pytest.fixture(params=[TRICEngine, TRICPlusEngine], ids=["TRIC", "TRIC+"])
def engine(request):
    return request.param()


class TestIndexingPhase:
    def test_register_builds_tries_and_views(self, engine, paper_fig4_queries):
        engine.register_all(paper_fig4_queries)
        stats = engine.statistics()
        assert engine.num_queries == 4
        assert stats["tries"] >= 2
        # Clustering: shared prefixes mean fewer trie nodes than path edges.
        assert stats["trie_nodes"] < stats["indexed_path_edges"]
        assert stats["base_views"] > 0

    def test_duplicate_query_id_rejected(self, engine, checkin_query):
        engine.register(checkin_query)
        with pytest.raises(DuplicateQueryError):
            engine.register(checkin_query)

    def test_matches_of_unknown_query_raises(self, engine):
        with pytest.raises(UnknownQueryError):
            engine.matches_of("nope")

    def test_describe_reports_engine_name(self, engine):
        description = engine.describe()
        assert description["engine"] in {"TRIC", "TRIC+"}
        assert description["queries"] == 0


class TestAnsweringPhase:
    def test_checkin_example(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        answers = [engine.on_update(update) for update in checkin_stream]
        # Only the final update completes the pattern.
        assert [bool(a) for a in answers] == [False, False, False, True]
        assert engine.satisfied_queries() == {"checkin"}
        assert engine.matches_of("checkin") == [{"p1": "P1", "p2": "P2", "place": "rio"}]

    def test_irrelevant_updates_are_ignored(self, engine, checkin_query):
        engine.register(checkin_query)
        assert engine.on_update(add("likes", "a", "b")) == frozenset()
        assert engine.updates_processed == 1

    def test_duplicate_edge_produces_no_new_answers(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        assert engine.on_update(add("checksIn", "P2", "rio")) == frozenset()

    def test_multiple_queries_share_an_update(self, engine):
        engine.register(QueryBuilder("q1").edge("knows", "?a", "?b").build())
        engine.register(QueryBuilder("q2").edge("knows", "?x", "person9").build())
        matched = engine.on_update(add("knows", "person1", "person9"))
        assert matched == {"q1", "q2"}

    def test_cycle_query(self, engine):
        triangle = QueryGraphPattern(
            "triangle",
            [("knows", "?a", "?b"), ("knows", "?b", "?c"), ("knows", "?c", "?a")],
        )
        engine.register(triangle)
        engine.on_update(add("knows", "x", "y"))
        engine.on_update(add("knows", "y", "z"))
        assert engine.on_update(add("knows", "z", "x")) == {"triangle"}
        assert len(engine.matches_of("triangle")) == 3  # three rotations

    def test_literal_constraints_are_enforced(self, engine):
        engine.register(QueryBuilder("q").edge("posted", "?p", "pst1").build())
        assert engine.on_update(add("posted", "u1", "pst2")) == frozenset()
        assert engine.on_update(add("posted", "u1", "pst1")) == {"q"}

    def test_registration_after_updates_sees_only_future_matches(self, engine, checkin_query):
        # Continuous-query semantics: only updates after registration count.
        engine.register(QueryBuilder("warmup").edge("knows", "?a", "?b").build())
        engine.on_update(add("knows", "P1", "P2"))
        engine.on_update(add("checksIn", "P1", "rio"))
        engine.register(checkin_query)
        assert engine.on_update(add("checksIn", "P2", "rio")) == frozenset()

    def test_registration_after_updates_backfills_shared_views(self, engine):
        # A later query sharing keys with an earlier one starts from the
        # already-materialized base views of those shared keys.
        engine.register(QueryBuilder("early").edge("knows", "?a", "?b").build())
        engine.on_update(add("knows", "P1", "P2"))
        late = (
            QueryBuilder("late")
            .edge("knows", "?a", "?b")
            .edge("checksIn", "?b", "?place")
            .build()
        )
        engine.register(late)
        assert engine.on_update(add("checksIn", "P2", "rio")) == {"late"}

    def test_injective_mode(self):
        engine = TRICEngine(injective=True)
        engine.register(QueryBuilder("q").edge("knows", "?a", "?b").build())
        assert engine.on_update(add("knows", "x", "x")) == frozenset()
        assert engine.on_update(add("knows", "x", "y")) == {"q"}


class TestDeletions:
    def test_deletion_invalidates_a_satisfied_query(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        invalidated = engine.on_update(delete("checksIn", "P2", "rio"))
        assert invalidated == {"checkin"}
        assert engine.satisfied_queries() == frozenset()
        assert engine.matches_of("checkin") == []

    def test_deletion_of_redundant_edge_keeps_query_satisfied(self, engine, checkin_query, checkin_stream):
        engine.register(checkin_query)
        for update in checkin_stream:
            engine.on_update(update)
        # P3 also checked in at rio but is not part of the only embedding.
        assert engine.on_update(delete("checksIn", "P3", "rio")) == frozenset()
        assert engine.satisfied_queries() == {"checkin"}

    def test_deleting_one_copy_of_duplicate_edge_keeps_matches(self, engine):
        engine.register(QueryBuilder("q").edge("knows", "?a", "?b").build())
        engine.on_update(add("knows", "x", "y"))
        engine.on_update(add("knows", "x", "y"))
        assert engine.on_update(delete("knows", "x", "y")) == frozenset()
        assert engine.matches_of("q") == [{"a": "x", "b": "y"}]

    def test_deletion_of_unknown_edge_is_a_noop(self, engine, checkin_query):
        engine.register(checkin_query)
        assert engine.on_update(delete("knows", "nobody", "noone")) == frozenset()


class TestCachingVariant:
    def test_tric_plus_reports_answer_materialisation(self):
        assert TRICPlusEngine().materializes_answers
        assert not TRICEngine().materializes_answers
        assert TRICPlusEngine().describe()["materialize_answers"]

    def test_tric_and_tric_plus_agree(self, checkin_query, checkin_stream):
        plain = TRICEngine()
        cached = TRICPlusEngine()
        for engine in (plain, cached):
            engine.register(checkin_query)
        for update in checkin_stream:
            assert plain.on_update(update) == cached.on_update(update)
        assert plain.matches_of("checkin") == cached.matches_of("checkin")
