"""Pub/sub subscription broker, sharded engine groups, and match deltas.

The central delivery property: for any interleaved add/delete/batch stream,
the cumulative deltas delivered to a subscription reconstruct exactly the
engine's (and the string oracle's) ``matches_of`` answer sets — per query,
under every overflow policy, with mid-stream subscribes/unsubscribes, and
across 1, 2 and 4 shards.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    NaiveEngine,
    QueryBuilder,
    TRICEngine,
    TRICPlusEngine,
    add,
    create_sharded_engine,
    delete,
)
from repro.graph.errors import EngineError, SubscriptionError, UnknownQueryError
from repro.pubsub import (
    MatchDelta,
    NotificationLog,
    OverflowPolicy,
    ShardedEngineGroup,
    SubscriptionBroker,
    canonical_key,
    replay_deltas,
)
from repro.query import QueryGraphPattern

LABELS = ("a", "b")
VERTICES = ("v0", "v1", "v2", "v3")
TERMS = ("?x", "?y", "?z", "v0", "v1")


def chain_query():
    return (
        QueryBuilder("chain")
        .edge("knows", "?a", "?b")
        .edge("likes", "?b", "?c")
        .build()
    )


def pair_query():
    return QueryBuilder("pair").edge("knows", "?x", "?y").build()


def answer_set(engine, query_id):
    return {canonical_key(b) for b in engine.matches_of(query_id)}


# ----------------------------------------------------------------------
# Broker basics
# ----------------------------------------------------------------------
class TestSubscriptionBroker:
    def test_delivers_added_and_removed_answers(self):
        engine = TRICPlusEngine()
        engine.register_all([chain_query(), pair_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["chain"])
        broker.on_update(add("knows", "ann", "bob"))
        broker.on_update(add("likes", "bob", "carl"))
        broker.on_update(add("likes", "bob", "dora"))
        # Partial deletion: chain keeps an answer, so the engine emits *no*
        # notification — the broker must still deliver the removal.
        tick = broker.on_update(delete("likes", "bob", "carl"))
        assert tick.notified == frozenset()
        deltas = subscription.drain()
        assert [d.query_id for d in deltas] == ["chain", "chain", "chain"]
        assert deltas[0].added == ({"a": "ann", "b": "bob", "c": "carl"},)
        assert deltas[-1].removed == ({"a": "ann", "b": "bob", "c": "carl"},)
        state = replay_deltas(deltas)
        assert state["chain"] == answer_set(engine, "chain")

    def test_unsubscribed_query_not_delivered(self):
        engine = TRICPlusEngine()
        engine.register_all([chain_query(), pair_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["chain"])
        broker.on_update(add("knows", "ann", "bob"))
        assert subscription.drain() == []  # only "pair" changed

    def test_subscribe_to_all_and_label_predicates(self):
        engine = TRICPlusEngine()
        engine.register_all([chain_query(), pair_query()])
        broker = SubscriptionBroker(engine)
        assert broker.resolve_queries() == ["chain", "pair"]
        assert broker.resolve_queries(labels=["likes"]) == ["chain"]
        assert broker.resolve_queries(labels=["knows"]) == ["chain", "pair"]
        everything = broker.subscribe("all")
        assert everything.query_ids == frozenset({"chain", "pair"})
        liked = broker.subscribe("liked", labels=["likes"])
        assert liked.query_ids == frozenset({"chain"})

    def test_initial_snapshot_on_mid_stream_subscribe(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        broker.on_update(add("knows", "ann", "bob"))
        subscription = broker.subscribe("late", ["pair"])
        [snapshot] = subscription.drain()
        assert snapshot.snapshot
        assert snapshot.added == ({"x": "ann", "y": "bob"},)
        # Empty answer sets produce no initial snapshot delta.
        engine2 = TRICPlusEngine()
        engine2.register_all([pair_query()])
        assert SubscriptionBroker(engine2).subscribe("early", ["pair"]).drain() == []

    def test_unknown_query_and_duplicate_name_raise(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        with pytest.raises(SubscriptionError):
            broker.subscribe("app", ["ghost"])
        broker.subscribe("app", ["pair"])
        with pytest.raises(SubscriptionError):
            broker.subscribe("app", ["pair"])
        with pytest.raises(SubscriptionError):
            broker.subscribe("empty", labels=["ghost-label"])

    def test_unsubscribe_stops_delivery_and_releases_tracking(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["pair"])
        broker.on_update(add("knows", "ann", "bob"))
        broker.unsubscribe(subscription)
        assert broker.watched_queries == frozenset()
        broker.on_update(add("knows", "bob", "carl"))
        # Only the pre-unsubscribe delta is drainable.
        assert len(subscription.drain()) == 1
        with pytest.raises(SubscriptionError):
            broker.subscribe_queries(subscription, ["pair"])

    def test_runtime_subscribe_and_unsubscribe_queries(self):
        engine = TRICPlusEngine()
        engine.register_all([chain_query(), pair_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["pair"])
        broker.on_update(add("knows", "ann", "bob"))
        assert [d.query_id for d in subscription.drain()] == ["pair"]
        broker.subscribe_queries(subscription, ["chain"])
        broker.unsubscribe_queries(subscription, ["pair"])
        assert subscription.query_ids == frozenset({"chain"})
        broker.on_update(add("likes", "bob", "carl"))
        broker.on_update(add("knows", "bob", "dora"))  # pair changes, unwatched
        deltas = subscription.drain()
        assert "chain" in {d.query_id for d in deltas}
        assert all(d.query_id != "pair" for d in deltas)

    def test_callback_push_mode(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        received = []
        subscription = broker.subscribe("push", ["pair"], callback=received.append)
        broker.on_update(add("knows", "ann", "bob"))
        assert subscription.pending == 0
        assert len(received) == 1 and received[0].query_id == "pair"

    def test_notification_log_is_a_subscribe_to_all_adapter(self):
        engine = TRICPlusEngine()
        engine.register_all([chain_query(), pair_query()])
        broker = SubscriptionBroker(engine)
        log = NotificationLog()
        log.attach(broker)
        broker.on_update(add("knows", "ann", "bob"))
        assert len(log) == 1
        assert log.queries_notified() == ["pair"]
        assert isinstance(log.deltas[0], MatchDelta)

    def test_materialising_engine_serves_deltas_without_repolling(self):
        """On the fast path the broker reads the maintained answer relation's
        delta log — matches_of never runs on the flush path."""
        engine = TRICPlusEngine()
        engine.register_all([chain_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["chain"])
        assert engine.answer_delta_source("chain") is not None

        def boom(query_id):  # pragma: no cover - must not be called
            raise AssertionError("matches_of re-polled on the fast path")

        engine.matches_of = boom
        broker.on_update(add("knows", "ann", "bob"))
        broker.on_update(add("likes", "bob", "carl"))
        broker.on_update(delete("likes", "bob", "carl"))
        deltas = subscription.drain()
        assert len(deltas) == 2
        assert replay_deltas(deltas)["chain"] == set()

    def test_describe_reports_engine_and_subscription_metrics(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        broker.subscribe("app", ["pair"])
        description = broker.describe()
        assert description["engine"]["engine"] == "TRIC+"
        assert description["watched_queries"] == 1
        assert description["subscriptions"][0]["subscription"] == "app"


# ----------------------------------------------------------------------
# Overflow policies
# ----------------------------------------------------------------------
def _pair_churn(broker, n=6):
    for i in range(n):
        broker.on_update(add("knows", f"s{i}", f"t{i}"))


class TestOverflowPolicies:
    def test_drop_oldest_bounds_the_queue_and_counts_drops(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe(
            "app", ["pair"], policy="drop-oldest", capacity=2
        )
        _pair_churn(broker)
        assert len(subscription.queue) == 2
        assert subscription.dropped == 4
        # The surviving deltas are the most recent ones.
        assert [d.timestamp for d in subscription.drain()] == [5, 6]

    def test_coalesce_resyncs_to_an_exact_snapshot(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["pair"], policy="coalesce", capacity=2)
        _pair_churn(broker)
        assert subscription.coalesced > 0
        assert subscription.pending <= subscription.capacity + 1
        deltas = subscription.drain()
        assert any(d.snapshot for d in deltas)
        assert replay_deltas(deltas)["pair"] == answer_set(engine, "pair")

    def test_block_never_drops_and_flags_backpressure(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["pair"], policy="block", capacity=2)
        backpressured = []
        for i in range(6):
            tick = broker.on_update(add("knows", f"s{i}", f"t{i}"))
            backpressured.extend(tick.backpressured)
        assert "app" in backpressured
        assert subscription.backpressured == 4
        deltas = subscription.drain()
        assert len(deltas) == 6  # lossless
        assert replay_deltas(deltas)["pair"] == answer_set(engine, "pair")

    def test_policy_coercion_rejects_unknown_values(self):
        engine = TRICPlusEngine()
        engine.register_all([pair_query()])
        broker = SubscriptionBroker(engine)
        with pytest.raises(SubscriptionError):
            broker.subscribe("app", ["pair"], policy="drop-newest")
        assert OverflowPolicy.coerce("coalesce") is OverflowPolicy.COALESCE


# ----------------------------------------------------------------------
# Sharded engine groups
# ----------------------------------------------------------------------
def _interleaved_stream():
    updates = []
    live = []
    for i in range(40):
        update = add(("knows", "likes")[i % 2], f"v{i % 7}", f"v{(i * 3 + 1) % 7}")
        updates.append(update)
        live.append(update.edge)
        if i % 5 == 4:
            edge = live.pop((i * 7) % len(live))
            updates.append(delete(edge.label, edge.source, edge.target))
    return updates


class TestShardedEngineGroup:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("assignment", ["hash", "label"])
    def test_answers_identical_to_unsharded_engine(self, num_shards, assignment):
        patterns = [chain_query(), pair_query()]
        reference = TRICPlusEngine()
        group = ShardedEngineGroup("TRIC+", num_shards, assignment=assignment)
        reference.register_all(patterns)
        group.register_all(patterns)
        for update in _interleaved_stream():
            assert group.on_update(update) == reference.on_update(update)
            assert group.satisfied_queries() == reference.satisfied_queries()
        for pattern in patterns:
            assert group.matches_of(pattern.query_id) == reference.matches_of(
                pattern.query_id
            )
            assert group.has_matches(pattern.query_id) == reference.has_matches(
                pattern.query_id
            )

    def test_batched_processing_matches_per_update(self):
        patterns = [chain_query(), pair_query()]
        per_update = ShardedEngineGroup("TRIC+", 2)
        batched = ShardedEngineGroup("TRIC+", 2)
        per_update.register_all(patterns)
        batched.register_all(patterns)
        updates = _interleaved_stream()
        expected = set()
        for update in updates:
            expected.update(per_update.on_update(update))
        assert batched.on_batch(updates) == frozenset(expected) or (
            batched.satisfied_queries() == per_update.satisfied_queries()
        )
        for pattern in patterns:
            assert batched.matches_of(pattern.query_id) == per_update.matches_of(
                pattern.query_id
            )

    def test_every_query_owned_by_exactly_one_shard(self):
        group = ShardedEngineGroup("TRIC+", 3)
        patterns = [
            QueryGraphPattern(f"Q{i}", [("a", f"?x{i}", f"?y{i}")]) for i in range(9)
        ]
        group.register_all(patterns)
        assert sum(shard.num_queries for shard in group.shards) == 9
        assert group.num_queries == 9
        for pattern in patterns:
            shard = group.shards[group.shard_of(pattern.query_id)]
            assert pattern.query_id in shard.queries

    def test_label_assignment_clusters_shared_labels(self):
        group = ShardedEngineGroup("TRIC+", 2, assignment="label")
        group.register(QueryGraphPattern("Q0", [("a", "?x", "?y")]))
        group.register(QueryGraphPattern("Q1", [("a", "?u", "?v")]))
        group.register(QueryGraphPattern("Q2", [("b", "?s", "?t")]))
        assert group.shard_of("Q0") == group.shard_of("Q1")
        assert group.shard_of("Q2") != group.shard_of("Q0")

    def test_label_assignment_does_not_collapse_on_shared_alphabets(self):
        """When every query shares one label, affinity must not pile the
        whole database onto a single shard (bounded ~2x imbalance)."""
        group = ShardedEngineGroup("TRIC+", 2, assignment="label")
        group.register_all(
            QueryGraphPattern(f"Q{i}", [("a", f"?x{i}", f"?y{i}")]) for i in range(20)
        )
        loads = [shard.num_queries for shard in group.shards]
        assert min(loads) > 0
        assert max(loads) <= 2 * (20 // 2 + 1)

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_mid_stream_registration_matches_unsharded_engine(self, num_shards):
        """A query registered after updates have flowed must see the same
        answers on the group as on one engine: the owning shard is
        backfilled with the live edges of labels it never received."""
        reference = TRICPlusEngine()
        group = ShardedEngineGroup("TRIC+", num_shards)
        for engine in (reference, group):
            engine.register(QueryGraphPattern("q0", [("knows", "?x", "?y")]))
            engine.on_update(add("knows", "a", "b"))
            engine.on_update(add("knows", "a", "b"))  # multigraph copy
            engine.register(QueryGraphPattern("q4", [("knows", "?x", "?y")]))
        assert group.matches_of("q4") == reference.matches_of("q4") == [
            {"x": "a", "y": "b"}
        ]
        # Registration backfill is silent, exactly like the engines' own.
        assert group.satisfied_queries() == reference.satisfied_queries()
        # The backfilled multiplicity honours later deletions.
        for engine in (reference, group):
            engine.on_update(delete("knows", "a", "b"))
        assert group.matches_of("q4") == reference.matches_of("q4") != []
        assert reference.on_update(delete("knows", "a", "b")) == group.on_update(
            delete("knows", "a", "b")
        )
        assert group.matches_of("q4") == reference.matches_of("q4") == []

    def test_history_retention_mirrors_the_registry_drop_rule(self):
        """Edges arriving while no registered key matches them are dropped
        by the unsharded registry; the group's history must drop them too."""
        reference = TRICPlusEngine()
        group = ShardedEngineGroup("TRIC+", 4, assignment="label")
        for engine in (reference, group):
            engine.register(QueryGraphPattern("pre", [("a", "?x", "?y")]))
            engine.on_update(add("b", "v0", "v0"))  # label b: unregistered
            engine.on_update(add("a", "v0", "v0"))
            engine.register(
                QueryGraphPattern("p", [("a", "?x", "?y"), ("b", "?y", "?z")])
            )
        assert reference.matches_of("p") == group.matches_of("p") == []

    def test_describe_exposes_per_shard_metrics(self):
        group = ShardedEngineGroup("TRIC+", 2)
        group.register_all([chain_query(), pair_query()])
        group.on_update(add("knows", "ann", "bob"))
        description = group.describe()
        assert description["shards"] == 2
        assert sum(description["shard_queries"]) == 2
        assert len(description["per_shard"]) == 2
        assert group.name == "TRIC+x2"

    def test_invalid_configuration_rejected(self):
        with pytest.raises(EngineError):
            ShardedEngineGroup("TRIC+", 0)
        with pytest.raises(EngineError):
            ShardedEngineGroup("TRIC+", 2, assignment="round-robin")
        with pytest.raises(UnknownQueryError):
            ShardedEngineGroup("TRIC+", 2).matches_of("ghost")

    def test_create_sharded_engine_helper(self):
        assert isinstance(create_sharded_engine("TRIC+", 1), TRICPlusEngine)
        group = create_sharded_engine("TRIC", 2)
        assert isinstance(group, ShardedEngineGroup)
        assert all(isinstance(shard, TRICEngine) for shard in group.shards)


# ----------------------------------------------------------------------
# Budgeted first-poll materialisation
# ----------------------------------------------------------------------
class TestBudgetedMaterialisation:
    def _many_answers_engine(self, cap):
        engine = TRICPlusEngine(answer_row_cap=cap)
        engine.register(pair_query())
        for i in range(5):
            engine.on_update(add("knows", f"s{i}", f"t{i}"))
        return engine

    def test_over_budget_query_spills_to_on_demand_paths(self):
        capped = self._many_answers_engine(cap=2)
        reference = TRICPlusEngine()
        reference.register(pair_query())
        for i in range(5):
            reference.on_update(add("knows", f"s{i}", f"t{i}"))
        # Answers stay byte-identical; the capped engine just never keeps a
        # maintained relation (answer_delta_source says so).
        assert capped.matches_of("pair") == reference.matches_of("pair")
        assert capped.answer_delta_source("pair") is None
        assert reference.answer_delta_source("pair") is not None
        assert capped.has_matches("pair")
        assert capped.statistics().get("materialized_answer_rows", 0) == 0

    def test_small_answer_sets_still_materialise_under_a_cap(self):
        engine = TRICPlusEngine(answer_row_cap=100)
        engine.register(pair_query())
        engine.on_update(add("knows", "ann", "bob"))
        assert engine.matches_of("pair") == [{"x": "ann", "y": "bob"}]
        assert engine.answer_delta_source("pair") is not None

    def test_broker_stays_exact_over_a_capped_engine(self):
        engine = self._many_answers_engine(cap=2)
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe("app", ["pair"])
        broker.on_update(add("knows", "s9", "t9"))
        broker.on_update(delete("knows", "s0", "t0"))
        deltas = subscription.drain()
        assert replay_deltas(deltas)["pair"] == answer_set(engine, "pair")

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            TRICPlusEngine(answer_row_cap=0)


# ----------------------------------------------------------------------
# The delivery property, against the string oracle
# ----------------------------------------------------------------------
@st.composite
def connected_patterns(draw):
    """Small connected query patterns over a tiny vocabulary."""
    num_edges = draw(st.integers(min_value=1, max_value=3))
    edges = []
    terms = [draw(st.sampled_from(TERMS))]
    for _ in range(num_edges):
        label = draw(st.sampled_from(LABELS))
        anchor = draw(st.sampled_from(terms))
        other = draw(st.sampled_from(TERMS))
        if draw(st.booleans()):
            edges.append((label, anchor, other))
        else:
            edges.append((label, other, anchor))
        terms.append(other)
    if not any(t.startswith("?") for triple in edges for t in triple[1:]):
        label, _, target = edges[0]
        edges[0] = (label, "?x", target)
    return edges


@st.composite
def mixed_update_streams(draw):
    """Interleaved additions and deletions; deletions retract live edges."""
    events = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=2**16),
                st.sampled_from(LABELS),
                st.sampled_from(VERTICES),
                st.sampled_from(VERTICES),
            ),
            min_size=1,
            max_size=30,
        )
    )
    live, updates = [], []
    for is_deletion, pick, label, source, target in events:
        if is_deletion and live:
            edge = live.pop(pick % len(live))
            updates.append(delete(edge.label, edge.source, edge.target))
        else:
            update = add(label, source, target)
            live.append(update.edge)
            updates.append(update)
    return updates


def _patterns_from(edge_lists):
    return [QueryGraphPattern(f"Q{i}", edges) for i, edges in enumerate(edge_lists)]


BROKER_ENGINE_FACTORIES = (
    TRICEngine,  # slow path: no maintained answer relations
    TRICPlusEngine,  # fast path: exact delta-log reads
    lambda: ShardedEngineGroup("TRIC+", 2),  # fan-out + merge
    lambda: ShardedEngineGroup("TRIC", 4, assignment="label"),
)


class TestDeliveryReconstructsMatches:
    @given(
        st.lists(connected_patterns(), min_size=1, max_size=3),
        mixed_update_streams(),
        st.integers(min_value=1, max_value=5),
        st.sampled_from([policy.value for policy in OverflowPolicy]),
    )
    @settings(max_examples=25, deadline=None)
    def test_cumulative_deltas_equal_oracle_matches(
        self, edge_lists, updates, batch_size, policy
    ):
        """For any interleaved add/delete/batch stream and any policy whose
        delivery is state-lossless at drain time (all of them: drop-oldest is
        only exercised within capacity here), the composed deltas equal the
        oracle's matches_of, engine by engine."""
        patterns = _patterns_from(edge_lists)
        oracle = NaiveEngine()
        oracle.register_all(patterns)
        subscribed = [p.query_id for p in patterns[::2]] or [patterns[0].query_id]
        runs = []
        for factory in BROKER_ENGINE_FACTORIES:
            engine = factory()
            engine.register_all(patterns)
            broker = SubscriptionBroker(engine)
            subscription = broker.subscribe(
                "app", subscribed, policy=policy, capacity=10_000
            )
            runs.append((engine, broker, subscription, []))
        for start in range(0, len(updates), batch_size):
            chunk = updates[start : start + batch_size]
            oracle.on_batch(chunk)
            for engine, broker, subscription, received in runs:
                broker.on_batch(chunk)
                received.extend(subscription.drain())
        for engine, _, _, received in runs:
            state = replay_deltas(received)
            for query_id in subscribed:
                expected = {canonical_key(b) for b in oracle.matches_of(query_id)}
                assert state.get(query_id, set()) == expected, (engine.name, query_id)
                assert expected == {
                    canonical_key(b) for b in engine.matches_of(query_id)
                }

    @given(
        st.lists(connected_patterns(), min_size=2, max_size=3),
        mixed_update_streams(),
        st.integers(min_value=0, max_value=29),
    )
    @settings(max_examples=20, deadline=None)
    def test_mid_stream_subscribe_and_unsubscribe_stay_exact(
        self, edge_lists, updates, pivot
    ):
        """A subscription opened mid-stream reconstructs from its initial
        snapshot; one closed mid-stream reconstructs the state at close."""
        patterns = _patterns_from(edge_lists)
        engine = TRICPlusEngine()
        engine.register_all(patterns)
        broker = SubscriptionBroker(engine)
        early_id, late_id = patterns[0].query_id, patterns[1].query_id
        early = broker.subscribe("early", [early_id])
        pivot = min(pivot, len(updates))
        received_early, received_late = [], []
        state_at_close = None
        late = None
        for index, update in enumerate(updates):
            if index == pivot:
                received_early.extend(early.drain())
                broker.unsubscribe(early)
                state_at_close = answer_set(engine, early_id)
                late = broker.subscribe("late", [late_id])
            broker.on_update(update)
            if late is not None:
                received_late.extend(late.drain())
        if state_at_close is None:  # pivot beyond the stream: close now
            received_early.extend(early.drain())
            state_at_close = answer_set(engine, early_id)
        assert replay_deltas(received_early).get(early_id, set()) == state_at_close
        if late is not None:
            received_late.extend(late.drain())
            assert replay_deltas(received_late).get(late_id, set()) == answer_set(
                engine, late_id
            )

    @given(mixed_update_streams(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_coalesce_under_tiny_capacity_stays_state_exact(self, updates, capacity):
        """Even with a pathologically small queue, coalesce-to-snapshot keeps
        the composed per-query state equal to matches_of."""
        patterns = [
            QueryGraphPattern("edge-a", [("a", "?x", "?y")]),
            QueryGraphPattern("two-hop", [("a", "?x", "?y"), ("b", "?y", "?z")]),
        ]
        engine = TRICPlusEngine()
        engine.register_all(patterns)
        broker = SubscriptionBroker(engine)
        subscription = broker.subscribe(
            "app", policy="coalesce", capacity=capacity
        )
        for update in updates:
            broker.on_update(update)
        state = replay_deltas(subscription.drain())
        for pattern in patterns:
            assert state.get(pattern.query_id, set()) == answer_set(
                engine, pattern.query_id
            )
