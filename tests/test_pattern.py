"""Unit tests for query graph patterns."""

from __future__ import annotations

import pytest

from repro.graph.errors import QueryError
from repro.query import QueryGraphPattern
from repro.query.terms import Literal, Variable


@pytest.fixture
def q4() -> QueryGraphPattern:
    """Q4 of the paper's Fig. 4(a): a three-edge chain with two literals."""
    return QueryGraphPattern(
        "Q4",
        [
            ("hasMod", "?f1", "?p1"),
            ("posted", "?p1", "pst1"),
            ("containedIn", "pst1", "?f2"),
        ],
    )


class TestConstruction:
    def test_empty_pattern_rejected(self):
        with pytest.raises(QueryError):
            QueryGraphPattern("bad", [])

    def test_empty_label_rejected(self):
        with pytest.raises(QueryError):
            QueryGraphPattern("bad", [("", "?a", "?b")])

    def test_from_triples(self):
        pattern = QueryGraphPattern.from_triples("Q", [("knows", "?a", "?b")])
        assert pattern.num_edges == 1

    def test_edges_keep_declaration_order_and_indices(self, q4):
        labels = [edge.label for edge in q4.edges]
        assert labels == ["hasMod", "posted", "containedIn"]
        assert [edge.index for edge in q4.edges] == [0, 1, 2]

    def test_name_defaults_to_id(self, q4):
        assert q4.name == "Q4"


class TestAccessors:
    def test_vertices_and_counts(self, q4):
        assert q4.num_edges == 3
        assert q4.num_vertices == 4
        assert Variable("p1") in q4.vertices
        assert Literal("pst1") in q4.vertices

    def test_variables_and_literals(self, q4):
        assert {v.name for v in q4.variables()} == {"f1", "p1", "f2"}
        assert {l.value for l in q4.literals()} == {"pst1"}

    def test_edge_keys_and_labels(self, q4):
        assert len(q4.edge_keys()) == 3
        assert len(q4.distinct_edge_keys()) == 3
        assert q4.edge_labels() == {"hasMod", "posted", "containedIn"}

    def test_in_out_edges_and_degree(self, q4):
        p1 = Variable("p1")
        assert len(q4.out_edges(p1)) == 1
        assert len(q4.in_edges(p1)) == 1
        assert q4.degree(p1) == 2

    def test_adjacency_covers_all_vertices(self, q4):
        adjacency = q4.adjacency()
        assert set(adjacency) == set(q4.vertices)

    def test_iteration_and_len(self, q4):
        assert len(q4) == 3
        assert len(list(q4)) == 3

    def test_equality_and_hash(self, q4):
        clone = QueryGraphPattern(
            "Q4",
            [
                ("hasMod", "?f1", "?p1"),
                ("posted", "?p1", "pst1"),
                ("containedIn", "pst1", "?f2"),
            ],
        )
        assert clone == q4
        assert hash(clone) == hash(q4)
        assert q4 != "not a pattern"


class TestClassification:
    def test_chain_detection(self, q4):
        assert q4.is_chain()
        assert not q4.is_star()
        assert not q4.is_cycle()

    def test_star_detection(self):
        star = QueryGraphPattern(
            "star",
            [("a", "?hub", "?x"), ("b", "?hub", "?y"), ("c", "?z", "?hub")],
        )
        assert star.is_star()
        assert not star.is_chain()

    def test_cycle_detection(self):
        cycle = QueryGraphPattern(
            "cycle",
            [("knows", "?a", "?b"), ("knows", "?b", "?c"), ("knows", "?c", "?a")],
        )
        assert cycle.is_cycle()
        assert not cycle.is_chain()
        assert not cycle.is_star()

    def test_single_edge_is_a_chain(self):
        single = QueryGraphPattern("single", [("knows", "?a", "?b")])
        assert single.is_chain()
        assert not single.is_star()
        assert not single.is_cycle()
